/// jobmig-trace — offline analysis of the migration stack's telemetry files.
///
/// Subcommands:
///   phases PATH         per-phase / per-track breakdown of a --trace-out file
///   critical-path PATH  extract the causal critical path through the span DAG
///   diff OLD NEW        compare two --json-out bench summaries (CI gate)
///   flight PATH         pretty-print a flight-recorder incident dump
///
/// All inputs are files this repo's own exporters wrote: Chrome trace_event
/// JSON (write_chrome_trace), jobmig-bench-v1/v2 summaries (BenchReporter)
/// and jobmig-flight-v1 dumps (FlightRecorder). Nothing here links the sim:
/// the tool reconstructs the DAG purely from the exported args
/// (span_id / from_span / to_span / trace_id), so it works on traces from
/// any build — and `diff` still accepts v1 summaries, which lack
/// restart_mode and per-row trace ids.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "jobmig/telemetry/json_read.hpp"

namespace {

using jobmig::telemetry::JsonValue;
using jobmig::telemetry::parse_json_file;

// ---- Chrome-trace model -----------------------------------------------------

/// One reconstructed span. Times are in microseconds of virtual time, as the
/// exporter wrote them ("ts"/"dur" fields).
struct TSpan {
  std::uint64_t id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t link_parent = 0;
  int pid = 0;
  int tid = 0;
  std::string name;
  double begin_us = 0.0;
  double end_us = 0.0;
  double length_us() const { return end_us - begin_us; }
};

/// One causal edge, with the link (consumption) time the exporter anchored
/// the "f" event at.
struct TFlow {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  double at_us = 0.0;
};

struct TraceFile {
  std::vector<TSpan> spans;
  std::vector<TFlow> flows;
  std::map<int, std::string> process_names;              // pid -> name
  std::map<std::pair<int, int>, std::string> tracks;     // (pid, tid) -> name

  const TSpan* find(std::uint64_t id) const {
    auto it = by_id.find(id);
    return it == by_id.end() ? nullptr : &spans[it->second];
  }
  std::string track_of(const TSpan& s) const {
    auto it = tracks.find({s.pid, s.tid});
    return it != tracks.end() ? it->second : "tid" + std::to_string(s.tid);
  }
  std::string process_of(const TSpan& s) const {
    auto it = process_names.find(s.pid);
    return it != process_names.end() ? it->second : "pid" + std::to_string(s.pid);
  }
  void index() {
    by_id.clear();
    for (std::size_t i = 0; i < spans.size(); ++i) by_id[spans[i].id] = i;
  }

 private:
  std::map<std::uint64_t, std::size_t> by_id;
};

std::optional<TraceFile> load_trace(const std::string& path) {
  std::string err;
  auto doc = parse_json_file(path, &err);
  if (!doc) {
    std::fprintf(stderr, "jobmig-trace: %s: %s\n", path.c_str(), err.c_str());
    return std::nullopt;
  }
  const JsonValue* events = doc->get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "jobmig-trace: %s: no traceEvents array\n", path.c_str());
    return std::nullopt;
  }

  TraceFile tf;
  std::map<std::uint64_t, TSpan> open_async;  // async "b" awaiting its "e"
  std::map<std::uint64_t, TFlow> open_flow;   // "s" awaiting its "f"
  for (const JsonValue& ev : events->items) {
    if (!ev.is_object()) continue;
    const std::string ph = ev.str("ph");
    const JsonValue* args = ev.get("args");
    if (ph == "M") {
      const int pid = static_cast<int>(ev.num("pid"));
      const std::string what = ev.str("name");
      const std::string name = args != nullptr ? args->str("name") : "";
      if (what == "process_name") tf.process_names[pid] = name;
      if (what == "thread_name") tf.tracks[{pid, static_cast<int>(ev.num("tid"))}] = name;
      continue;
    }
    if (ph == "X" || ph == "b") {
      TSpan s;
      s.name = ev.str("name");
      s.pid = static_cast<int>(ev.num("pid"));
      s.tid = static_cast<int>(ev.num("tid"));
      s.begin_us = ev.num("ts");
      if (args != nullptr) {
        s.id = args->u64("span_id");
        s.trace_id = args->u64("trace_id");
        s.link_parent = args->u64("link_parent");
      }
      if (ph == "X") {
        s.end_us = s.begin_us + ev.num("dur");
        tf.spans.push_back(std::move(s));
      } else {
        open_async[ev.u64("id")] = std::move(s);
      }
      continue;
    }
    if (ph == "e") {
      auto it = open_async.find(ev.u64("id"));
      if (it == open_async.end()) continue;
      it->second.end_us = ev.num("ts");
      tf.spans.push_back(std::move(it->second));
      open_async.erase(it);
      continue;
    }
    if (ph == "s" || ph == "f") {
      const std::uint64_t id = ev.u64("id");
      TFlow& f = open_flow[id];
      if (args != nullptr) {
        if (const JsonValue* v = args->get("from_span")) f.from = v->as_u64();
        if (const JsonValue* v = args->get("to_span")) f.to = v->as_u64();
      }
      if (ph == "f") {
        f.at_us = ev.num("ts");
        if (f.from != 0 && f.to != 0) tf.flows.push_back(f);
        open_flow.erase(id);
      }
      continue;
    }
  }
  tf.index();
  return tf;
}

/// Most-populated trace id in the file (files usually hold one cycle; bench
/// runs with several pick the biggest unless --trace-id narrows it).
std::uint64_t default_trace_id(const TraceFile& tf) {
  std::map<std::uint64_t, int> votes;
  for (const TSpan& s : tf.spans) {
    if (s.trace_id != 0) ++votes[s.trace_id];
  }
  std::uint64_t best = 0;
  int best_votes = 0;
  for (const auto& [id, n] : votes) {
    if (n > best_votes) {
      best = id;
      best_votes = n;
    }
  }
  return best;
}

// ---- phases -----------------------------------------------------------------

/// Busy time of a set of intervals clipped to [lo, hi): union, no double
/// counting of nested/overlapping spans.
double busy_us(std::vector<std::pair<double, double>> iv, double lo, double hi) {
  std::sort(iv.begin(), iv.end());
  double total = 0.0;
  double cur_lo = 0.0, cur_hi = -1.0;
  for (auto [b, e] : iv) {
    b = std::max(b, lo);
    e = std::min(e, hi);
    if (e <= b) continue;
    if (cur_hi < b) {
      total += cur_hi - cur_lo;
      cur_lo = b;
      cur_hi = e;
    } else {
      cur_hi = std::max(cur_hi, e);
    }
  }
  if (cur_hi > cur_lo) total += cur_hi - cur_lo;
  return total;
}

const char* const kPhaseNames[] = {"Stall", "Migration", "Restart", "Resume"};

/// The manager's four phase spans for one cycle, in order; empty entries for
/// phases the trace does not contain (aborted cycles).
std::vector<const TSpan*> phase_spans(const TraceFile& tf, std::uint64_t trace_id) {
  std::vector<const TSpan*> out(4, nullptr);
  for (const TSpan& s : tf.spans) {
    if (s.trace_id != trace_id || tf.track_of(s) != "migmgr") continue;
    for (int p = 0; p < 4; ++p) {
      if (s.name == kPhaseNames[p] && out[p] == nullptr) out[p] = &s;
    }
  }
  return out;
}

int cmd_phases(const std::string& path, std::uint64_t want_trace) {
  auto tf = load_trace(path);
  if (!tf) return 1;
  const std::uint64_t trace_id = want_trace != 0 ? want_trace : default_trace_id(*tf);
  if (trace_id == 0) {
    std::fprintf(stderr, "jobmig-trace: no traced migration cycle in %s\n", path.c_str());
    return 1;
  }
  const auto phases = phase_spans(*tf, trace_id);
  std::printf("trace %llu — migration phases\n", static_cast<unsigned long long>(trace_id));
  std::printf("%-12s %12s %12s %12s\n", "phase", "begin-ms", "end-ms", "dur-ms");
  for (int p = 0; p < 4; ++p) {
    if (phases[p] == nullptr) {
      std::printf("%-12s %12s %12s %12s\n", kPhaseNames[p], "-", "-", "-");
      continue;
    }
    std::printf("%-12s %12.3f %12.3f %12.3f\n", kPhaseNames[p], phases[p]->begin_us / 1000.0,
                phases[p]->end_us / 1000.0, phases[p]->length_us() / 1000.0);
  }

  // Per-track busy time within each phase window (interval union per track,
  // so nested sync spans and overlapping async spans count once).
  std::map<std::string, std::vector<std::pair<double, double>>> by_track;
  for (const TSpan& s : tf->spans) {
    if (s.trace_id != trace_id) continue;
    by_track[tf->process_of(s) + "/" + tf->track_of(s)].emplace_back(s.begin_us, s.end_us);
  }
  std::printf("\nper-track busy time (ms) within each phase window\n");
  std::printf("%-28s %10s %10s %10s %10s\n", "track", "stall", "migration", "restart", "resume");
  for (const auto& [track, iv] : by_track) {
    std::printf("%-28s", track.c_str());
    for (int p = 0; p < 4; ++p) {
      if (phases[p] == nullptr) {
        std::printf(" %10s", "-");
        continue;
      }
      std::printf(" %10.3f", busy_us(iv, phases[p]->begin_us, phases[p]->end_us) / 1000.0);
    }
    std::printf("\n");
  }
  return 0;
}

// ---- critical-path ----------------------------------------------------------

struct Hop {
  const TSpan* span = nullptr;
  double enter_us = 0.0;  // when causality entered this span (link time)
  double exit_us = 0.0;   // when it left (next hop's link time / path end)
};

/// Walk the timestamped flow DAG backwards from the cycle's final span: at
/// each step follow the latest in-edge consumed no later than the current
/// point. Hop durations telescope, so they sum to exactly the span of time
/// between the first span's entry and the final span's end.
std::vector<Hop> critical_path(const TraceFile& tf, std::uint64_t trace_id) {
  // In-edges per span, for this trace only.
  std::map<std::uint64_t, std::vector<const TFlow*>> in;
  std::set<std::uint64_t> has_out;
  for (const TFlow& f : tf.flows) {
    const TSpan* to = tf.find(f.to);
    const TSpan* from = tf.find(f.from);
    if (to == nullptr || from == nullptr || to->trace_id != trace_id) continue;
    in[f.to].push_back(&f);
    has_out.insert(f.from);
  }

  // Final span: latest-ending linked span that causes nothing itself —
  // normally the manager's "Resume" phase. Ties (several spans ending at
  // the barrier release) resolve to the latest beginning.
  const TSpan* final_span = nullptr;
  for (const TSpan& s : tf.spans) {
    if (s.trace_id != trace_id || in.find(s.id) == in.end()) continue;
    if (has_out.contains(s.id)) continue;
    if (final_span == nullptr || s.end_us > final_span->end_us ||
        (s.end_us == final_span->end_us && s.begin_us > final_span->begin_us)) {
      final_span = &s;
    }
  }
  if (final_span == nullptr) return {};

  std::vector<Hop> rpath;
  const TSpan* cur = final_span;
  double cur_t = final_span->end_us;
  // Bounded walk: times never increase, and an edge is only taken when it
  // moves strictly earlier or to a new span, so flows.size() bounds it.
  for (std::size_t step = 0; step <= tf.flows.size(); ++step) {
    const TFlow* best = nullptr;
    auto it = in.find(cur->id);
    if (it != in.end()) {
      for (const TFlow* f : it->second) {
        if (f->at_us > cur_t || f->from == cur->id) continue;
        if (best == nullptr || f->at_us > best->at_us) best = f;
      }
    }
    if (best == nullptr) {
      rpath.push_back(Hop{cur, cur->begin_us, cur_t});
      break;
    }
    rpath.push_back(Hop{cur, best->at_us, cur_t});
    cur = tf.find(best->from);
    cur_t = best->at_us;
  }
  std::reverse(rpath.begin(), rpath.end());
  return rpath;
}

int cmd_critical_path(const std::string& path, std::uint64_t want_trace) {
  auto tf = load_trace(path);
  if (!tf) return 1;
  const std::uint64_t trace_id = want_trace != 0 ? want_trace : default_trace_id(*tf);
  if (trace_id == 0) {
    std::fprintf(stderr, "jobmig-trace: no traced migration cycle in %s\n", path.c_str());
    return 1;
  }
  const auto hops = critical_path(*tf, trace_id);
  if (hops.empty()) {
    std::fprintf(stderr, "jobmig-trace: no causal path found for trace %llu\n",
                 static_cast<unsigned long long>(trace_id));
    return 1;
  }

  std::printf("trace %llu — critical path (%zu hops)\n",
              static_cast<unsigned long long>(trace_id), hops.size());
  std::printf("%12s %10s  %-24s %s\n", "enter-ms", "hop-ms", "track", "span");
  double total_us = 0.0;
  std::set<std::string> phases_seen;
  for (const Hop& h : hops) {
    const double hop_us = h.exit_us - h.enter_us;
    total_us += hop_us;
    const std::string track = tf->track_of(*h.span);
    std::printf("%12.3f %10.3f  %-24s %s\n", h.enter_us / 1000.0, hop_us / 1000.0,
                track.c_str(), h.span->name.c_str());
    for (const char* p : kPhaseNames) {
      if (track == "migmgr" && h.span->name == p) phases_seen.insert(p);
    }
  }

  std::printf("----\n");
  std::printf("critical path: %.3f ms over %zu hops\n", total_us / 1000.0, hops.size());
  // Cross-check against the manager's own cycle span when present.
  for (const TSpan& s : tf->spans) {
    if (s.trace_id == trace_id && s.name == "migration cycle") {
      const double cyc = s.length_us();
      const double dev = cyc > 0.0 ? (total_us - cyc) / cyc * 100.0 : 0.0;
      std::printf("cycle span:    %.3f ms (path covers %+.2f%%)\n", cyc / 1000.0, dev);
      break;
    }
  }
  std::printf("phases on path:");
  for (const char* p : kPhaseNames) {
    std::printf(" %s=%s", p, phases_seen.contains(p) ? "yes" : "no");
  }
  std::printf("\n");
  return 0;
}

// ---- diff -------------------------------------------------------------------

struct SummaryRow {
  std::string label;
  std::vector<std::pair<std::string, double>> fields;
};

struct Summary {
  std::string format;
  std::string bench;
  std::string restart_mode;  // empty in v1 files
  std::vector<SummaryRow> rows;
};

std::optional<Summary> load_summary(const std::string& path) {
  std::string err;
  auto doc = parse_json_file(path, &err);
  if (!doc) {
    std::fprintf(stderr, "jobmig-trace: %s: %s\n", path.c_str(), err.c_str());
    return std::nullopt;
  }
  Summary s;
  s.format = doc->str("format");
  if (s.format != "jobmig-bench-v1" && s.format != "jobmig-bench-v2") {
    std::fprintf(stderr, "jobmig-trace: %s: not a jobmig-bench summary (format '%s')\n",
                 path.c_str(), s.format.c_str());
    return std::nullopt;
  }
  s.bench = doc->str("bench");
  s.restart_mode = doc->str("restart_mode");  // absent in v1 -> ""
  const JsonValue* rows = doc->get("rows");
  if (rows != nullptr && rows->is_array()) {
    for (const JsonValue& r : rows->items) {
      if (!r.is_object()) continue;
      SummaryRow row;
      row.label = r.str("label");
      for (const auto& [k, v] : r.members) {
        // trace_id is an identifier, not a measurement.
        if (k == "label" || k == "trace_id" || !v.is_number()) continue;
        row.fields.emplace_back(k, v.as_double());
      }
      s.rows.push_back(std::move(row));
    }
  }
  return s;
}

int cmd_diff(const std::string& old_path, const std::string& new_path, double max_regress_pct) {
  auto olds = load_summary(old_path);
  auto news = load_summary(new_path);
  if (!olds || !news) return 1;
  if (!olds->bench.empty() && !news->bench.empty() && olds->bench != news->bench) {
    std::fprintf(stderr, "jobmig-trace: comparing different benches (%s vs %s)\n",
                 olds->bench.c_str(), news->bench.c_str());
  }
  if (!olds->restart_mode.empty() && !news->restart_mode.empty() &&
      olds->restart_mode != news->restart_mode) {
    std::printf("note: restart_mode differs (%s -> %s); timing shifts are expected\n",
                olds->restart_mode.c_str(), news->restart_mode.c_str());
  }

  std::printf("%s: %s (%s) vs %s (%s), gate %.1f%% on *_ms fields\n",
              olds->bench.empty() ? "bench" : olds->bench.c_str(), old_path.c_str(),
              olds->format.c_str(), new_path.c_str(), news->format.c_str(), max_regress_pct);
  std::printf("%-16s %-16s %14s %14s %9s\n", "row", "field", "old", "new", "delta");

  // Durations below this are pure scheduling noise; don't gate on them.
  constexpr double kMinGateMs = 1.0;
  int regressions = 0;
  bool any_row = false;
  for (const SummaryRow& orow : olds->rows) {
    const SummaryRow* nrow = nullptr;
    for (const SummaryRow& cand : news->rows) {
      if (cand.label == orow.label) {
        nrow = &cand;
        break;
      }
    }
    if (nrow == nullptr) {
      std::printf("%-16s row missing from %s\n", orow.label.c_str(), new_path.c_str());
      ++regressions;
      continue;
    }
    for (const auto& [key, old_v] : orow.fields) {
      const auto it = std::find_if(nrow->fields.begin(), nrow->fields.end(),
                                   [&](const auto& f) { return f.first == key; });
      if (it == nrow->fields.end()) continue;
      const double new_v = it->second;
      const double pct = old_v != 0.0 ? (new_v - old_v) / old_v * 100.0
                                      : (new_v != 0.0 ? 100.0 : 0.0);
      const bool gated = key.size() > 3 && key.compare(key.size() - 3, 3, "_ms") == 0;
      const bool regressed = gated && pct > max_regress_pct && old_v >= kMinGateMs;
      if (regressed) ++regressions;
      any_row = true;
      std::printf("%-16s %-16s %14.3f %14.3f %+8.2f%%%s\n", orow.label.c_str(), key.c_str(),
                  old_v, new_v, pct, regressed ? "  <-- REGRESSION" : "");
    }
  }
  if (!any_row) {
    std::fprintf(stderr, "jobmig-trace: no comparable rows\n");
    return 1;
  }
  if (regressions > 0) {
    std::printf("----\n%d regression%s beyond %.1f%%\n", regressions,
                regressions == 1 ? "" : "s", max_regress_pct);
    return 1;
  }
  std::printf("----\nno regressions beyond %.1f%%\n", max_regress_pct);
  return 0;
}

// ---- flight -----------------------------------------------------------------

int cmd_flight(const std::string& path) {
  std::string err;
  auto doc = parse_json_file(path, &err);
  if (!doc) {
    std::fprintf(stderr, "jobmig-trace: %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  if (doc->str("format") != "jobmig-flight-v1") {
    std::fprintf(stderr, "jobmig-trace: %s: not a jobmig-flight-v1 dump\n", path.c_str());
    return 1;
  }
  std::printf("flight recorder dump — %s\n", doc->str("reason", "(no reason)").c_str());
  const std::uint64_t total = doc->u64("total_recorded");
  const std::uint64_t dropped = doc->u64("dropped");
  std::printf("%llu events recorded, %llu dropped by the ring\n",
              static_cast<unsigned long long>(total), static_cast<unsigned long long>(dropped));
  const JsonValue* entries = doc->get("entries");
  if (entries == nullptr || !entries->is_array()) return 0;
  std::printf("%8s %14s %-10s %-8s %s\n", "seq", "t-ms", "category", "trace", "text");
  for (const JsonValue& e : entries->items) {
    if (!e.is_object()) continue;
    const double t_ms = static_cast<double>(e.get("t_ns") != nullptr
                                                ? e.get("t_ns")->as_i64()
                                                : 0) / 1e6;
    const std::uint64_t trace = e.u64("trace_id");
    char trace_buf[24];
    if (trace != 0) {
      std::snprintf(trace_buf, sizeof trace_buf, "%llu", static_cast<unsigned long long>(trace));
    } else {
      std::snprintf(trace_buf, sizeof trace_buf, "-");
    }
    std::printf("%8llu %14.3f %-10s %-8s %s\n",
                static_cast<unsigned long long>(e.u64("seq")), t_ms,
                e.str("category").c_str(), trace_buf, e.str("text").c_str());
  }
  return 0;
}

// ---- main -------------------------------------------------------------------

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [args]\n"
               "  phases TRACE.json [--trace-id N]\n"
               "      per-phase and per-track breakdown of a --trace-out file\n"
               "  critical-path TRACE.json [--trace-id N]\n"
               "      causal critical path through the migration DAG\n"
               "  diff OLD.json NEW.json [--max-regress PCT]\n"
               "      compare --json-out summaries; exit 1 on *_ms regressions\n"
               "      beyond PCT (default 10); reads v1 and v2 files\n"
               "  flight DUMP.json\n"
               "      pretty-print a flight-recorder incident dump\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];

  std::vector<std::string> paths;
  std::uint64_t trace_id = 0;
  double max_regress = 10.0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto take = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (a.compare(0, n, flag) == 0 && a.size() > n && a[n] == '=') return a.c_str() + n + 1;
      if (a == flag && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = take("--trace-id")) {
      trace_id = std::strtoull(v, nullptr, 10);
    } else if (const char* w = take("--max-regress")) {
      max_regress = std::strtod(w, nullptr);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "jobmig-trace: unknown option %s\n", a.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(a);
    }
  }

  if (cmd == "phases" && paths.size() == 1) return cmd_phases(paths[0], trace_id);
  if (cmd == "critical-path" && paths.size() == 1) return cmd_critical_path(paths[0], trace_id);
  if (cmd == "diff" && paths.size() == 2) return cmd_diff(paths[0], paths[1], max_regress);
  if (cmd == "flight" && paths.size() == 1) return cmd_flight(paths[0]);
  return usage(argv[0]);
}
