/// Predictive failover: the paper's motivating scenario end to end.
///
/// IPMI pollers watch every node's sensors; a cooling failure is injected
/// on one node mid-run; the trend predictor publishes FAILURE_PREDICTED on
/// the FTB backplane; the health trigger converts it into a migration
/// request; the framework moves the node's ranks to the hot spare before
/// the node would have died — and the application never notices beyond a
/// few seconds of stall.

#include <cstdio>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

using namespace jobmig;
using namespace jobmig::sim::literals;

int main() {
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 1;
  cluster::Cluster cl(engine, cfg);

  auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kA, 16);
  cl.create_job(4, spec.image_bytes_per_rank);
  cl.enable_health_monitoring(/*poll_interval=*/5_s);

  std::printf("predictive_failover: %s, health monitoring every 5 s\n", spec.name().c_str());

  // Watch the health events as an operator would.
  ftb::FtbClient observer(cl.login_agent(), "operator_console");
  observer.subscribe(ftb::Subscription{health::kHealthSpace, "*", ftb::Severity::kInfo});
  observer.subscribe(ftb::Subscription{migration::kMigSpace, migration::kEvMigrate,
                                       ftb::Severity::kInfo});
  engine.spawn([](ftb::FtbClient& obs) -> sim::Task {
    while (true) {
      ftb::FtbEvent ev = co_await obs.next_event();
      std::printf("[%7.2fs] FTB %-20s %-10s payload='%s' (from %s)\n",
                  sim::Engine::current()->now().to_seconds(), ev.name.c_str(),
                  std::string(ftb::to_string(ev.severity)).c_str(), ev.payload.c_str(),
                  ev.publisher.c_str());
    }
  }(observer));

  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s) -> sim::Task {
    co_await c.start(workload::make_app(s));
    // node1's fan begins failing 20 s into the run: temperature ramps at
    // 0.8 C/s from the 52 C baseline toward the 80 C fatal threshold.
    c.sensor(1).inject_degradation(sim::Engine::current()->now() + 20_s, 0.8);
    std::printf("[%7.2fs] job launched; cooling fault armed on node1 at +20 s\n",
                sim::Engine::current()->now().to_seconds());
  }(cl, spec));

  engine.spawn([](cluster::Cluster& c) -> sim::Task {
    co_await c.job().wait_app_done();
    std::printf("[%7.2fs] application finished\n",
                sim::Engine::current()->now().to_seconds());
    c.stop_health_monitoring();  // the demo is over; silence the pollers
  }(cl));

  engine.run_until(sim::TimePoint::origin() + 2400_s);

  if (cl.migration_manager().cycles_completed() != 1 || !cl.job().app_done()) {
    std::printf("error: expected one predictive migration and a finished app\n");
    return 1;
  }
  const auto& report = cl.migration_manager().last_report();
  std::printf("\nsummary: ranks moved off %s onto %s.\n", report.source_host.c_str(),
              report.target_host.c_str());
  std::printf("cycle: stall %.0f ms, migration %.0f ms, restart %.0f ms, resume %.0f ms\n",
              report.stall.to_ms(), report.migration.to_ms(), report.restart.to_ms(),
              report.resume.to_ms());
  std::printf("the node was predicted to fail and evacuated while still healthy.\n");
  return 0;
}
