/// Cluster-wide orchestration demo: two jobs on disjoint node sets share
/// one spare pool. A planned maintenance drain and a health-triggered
/// evacuation run through the same control plane — admission control,
/// spare-pool placement and per-node-set leases — so disjoint cycles
/// overlap and overlapping ones queue.
///
///   Timeline:
///     t=0s   jobA on {node0,node1}, jobB on {node2,node3} launch
///     t=2s   maintenance drain of node1 (jobA) is requested
///     t=3s   a failing fan on node2 (jobB): the IPMI poller's trend
///            predictor publishes FAILURE_PREDICTED, the orchestrator
///            evacuates node2 unasked — at kEvacuation priority, so it
///            would overtake any still-queued maintenance cycle.

#include <cstdio>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/orch/orchestrator.hpp"
#include "jobmig/workload/npb.hpp"

using namespace jobmig;
using namespace jobmig::sim::literals;

namespace {

sim::Task scenario(cluster::Cluster& cl, orch::Orchestrator& orch, workload::KernelSpec spec,
                   health::IpmiPoller& poller, std::vector<orch::CycleOutcome>* drained) {
  for (const auto& mj : cl.managed_jobs()) {
    co_await cl.start_managed(*mj, workload::make_app(spec));
  }
  std::printf("t=%5.1fs  both jobs launched\n", cl.engine().now().count_ns() * 1e-9);

  // The fan on node2 starts dying now; the poller notices in a few seconds.
  cl.sensor(2).inject_degradation(cl.engine().now() + 1_s, 2.0);
  poller.start();

  co_await sim::sleep_for(2_s);
  std::printf("t=%5.1fs  maintenance drain of node1 requested\n",
              cl.engine().now().count_ns() * 1e-9);
  std::vector<std::string> hosts{"node1"};
  *drained = co_await orch.drain_nodes(std::move(hosts));
}

}  // namespace

int main() {
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 2;
  cluster::Cluster cl(engine, cfg);

  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 4, 0.2);
  spec.time_per_iter = 300_ms;  // keep both jobs alive past every cycle
  cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);

  orch::Orchestrator orch(cl);
  orch.start();  // listen for FAILURE_PREDICTED

  health::IpmiPoller poller(engine, cl.sensor(2), cl.node_agent(2), 1_s);
  std::vector<orch::CycleOutcome> drained;
  engine.spawn(scenario(cl, orch, spec, poller, &drained));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  poller.stop();
  orch.shutdown();

  std::printf("\ncycles that ran (completion order):\n");
  for (const auto& oc : orch.history()) {
    std::printf("  j%d  %-6s -> %-6s  %-12s  downtime %6.0f ms  lease %llu\n", oc.report.job_id,
                oc.report.source_host.c_str(), oc.report.target_host.c_str(),
                std::string(orch::to_string(oc.priority)).c_str(), oc.report.total().to_ms(),
                static_cast<unsigned long long>(oc.lease_id));
  }

  JOBMIG_ASSERT(drained.size() == 1 && !drained[0].report.aborted);
  JOBMIG_ASSERT(orch.evacuations_triggered() == 1);
  JOBMIG_ASSERT(orch.history().size() == 2);
  std::printf("\nmaintenance drain and auto-evacuation both completed; spare pool now %zu free\n",
              orch.placement().free_count());
  return 0;
}
