/// Side-by-side strategy comparison on one workload — the paper's core
/// argument as a runnable demo: handling a predicted node failure by
/// proactive migration vs. the traditional full-job Checkpoint/Restart.

#include <cstdio>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

using namespace jobmig;
using namespace jobmig::sim::literals;

namespace {

workload::KernelSpec demo_spec() {
  return workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kA, 16);
}

/// Proactive migration of the failing node's ranks.
migration::MigrationReport run_migration_strategy() {
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 1;
  cluster::Cluster cl(engine, cfg);
  auto spec = demo_spec();
  cl.create_job(4, spec.image_bytes_per_rank);
  migration::MigrationReport report;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::MigrationReport& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(15_s);
    out = co_await c.migration_manager().migrate("node3");
  }(cl, spec, report));
  engine.run_until(sim::TimePoint::origin() + 2400_s);
  JOBMIG_ASSERT(cl.job().app_done());
  return report;
}

/// Reactive CR: checkpoint everything, node dies, restart everything.
migration::CrReport run_cr_strategy(bool pvfs) {
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 1;
  cluster::Cluster cl(engine, cfg);
  auto spec = demo_spec();
  cl.create_job(4, spec.image_bytes_per_rank);
  migration::CrReport report;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s, bool use_pvfs,
                  migration::CrReport& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(15_s);
    auto cr = use_pvfs ? c.make_cr_pvfs() : c.make_cr_local();
    out = co_await cr->full_cycle();  // checkpoint + (failure) + restart
  }(cl, spec, pvfs, report));
  engine.run_until(sim::TimePoint::origin() + 2400_s);
  JOBMIG_ASSERT(report.checkpoint_files > 0);
  return report;
}

}  // namespace

int main() {
  auto spec = demo_spec();
  std::printf("cr_vs_migration: one predicted node failure under %s (16 ranks, 4 nodes)\n\n",
              spec.name().c_str());

  const auto mig = run_migration_strategy();
  const auto ext3 = run_cr_strategy(false);
  const auto pvfs = run_cr_strategy(true);

  std::printf("%-24s %14s %14s\n", "strategy", "time to handle", "data written");
  std::printf("%-24s %12.1f s %11.1f MB  (only the failing node's ranks move)\n",
              "proactive migration", mig.total().to_seconds(),
              static_cast<double>(mig.bytes_moved) / 1e6);
  std::printf("%-24s %12.1f s %11.1f MB  (full job dumped + restarted)\n",
              "CR to local ext3", ext3.cycle_total().to_seconds(),
              static_cast<double>(ext3.bytes_written) / 1e6);
  std::printf("%-24s %12.1f s %11.1f MB  (full job through shared storage)\n",
              "CR to PVFS", pvfs.cycle_total().to_seconds(),
              static_cast<double>(pvfs.bytes_written) / 1e6);
  std::printf("\nspeedup of migration: %.2fx vs CR(ext3), %.2fx vs CR(PVFS)\n",
              ext3.cycle_total().to_seconds() / mig.total().to_seconds(),
              pvfs.cycle_total().to_seconds() / mig.total().to_seconds());
  std::printf("(the paper reports 2.03x and 4.49x for LU class C at 64 ranks)\n");
  return 0;
}
