/// Rolling maintenance: the paper's "direct user intervention" trigger used
/// for operations rather than fault tolerance. An operator drains two nodes
/// one after the other (patch, reboot, ...) while the job keeps running —
/// each drain is a user-triggered migration onto a fresh spare.

#include <cstdio>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

using namespace jobmig;
using namespace jobmig::sim::literals;

int main() {
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 2;  // two spares: two nodes can rotate out
  cluster::Cluster cl(engine, cfg);

  auto spec = workload::make_spec(workload::NpbApp::kSP, workload::NpbClass::kA, 16);
  cl.create_job(4, spec.image_bytes_per_rank);

  std::printf("maintenance_drain: %s; draining node0 then node1 for maintenance\n",
              spec.name().c_str());

  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s) -> sim::Task {
    co_await c.start(workload::make_app(s));

    for (const char* victim : {"node0", "node1"}) {
      co_await sim::sleep_for(20_s);
      std::printf("[%7.2fs] operator: drain %s\n",
                  sim::Engine::current()->now().to_seconds(), victim);
      auto report = co_await c.migration_manager().migrate(victim);
      std::printf("[%7.2fs] %s drained onto %s (%.1f MB in %.1f s); state now %s\n",
                  sim::Engine::current()->now().to_seconds(), victim,
                  report.target_host.c_str(), static_cast<double>(report.bytes_moved) / 1e6,
                  report.total().to_seconds(),
                  std::string(launch::to_string(c.job_manager().nla_for_host(victim)->state()))
                      .c_str());
      std::printf("           %s can now be patched and rebooted safely\n", victim);
    }
  }(cl, spec));

  engine.run_until(sim::TimePoint::origin() + 2400_s);

  if (cl.migration_manager().cycles_completed() != 2 || !cl.job().app_done()) {
    std::printf("error: expected two drains and a finished application\n");
    return 1;
  }
  std::printf("\nfinal placement:\n");
  for (int r = 0; r < cl.job().size(); ++r) {
    std::printf("  rank %2d -> %s\n", r, cl.job().node_of(r).hostname.c_str());
  }
  std::printf("both maintenance windows served with zero job restarts.\n");
  return 0;
}
