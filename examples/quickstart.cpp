/// Quickstart: build the paper's testbed, run a small MPI-style job, and
/// migrate one node's processes to the hot spare while the job keeps
/// running.
///
///   $ ./quickstart
///
/// Everything happens in simulated time on a deterministic event engine;
/// re-running produces byte-identical output.

#include <cstdio>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

using namespace jobmig;
using namespace jobmig::sim::literals;

int main() {
  // 1. A cluster like the paper's: compute nodes + one hot spare on a DDR
  //    InfiniBand switch, GigE side network carrying the FTB backplane.
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 1;
  cluster::Cluster cl(engine, cfg);

  // 2. A job: 4 ranks per node running an LU-like iterative solver
  //    (class A keeps the demo snappy).
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kA, 16);
  cl.create_job(/*ranks_per_node=*/4, spec.image_bytes_per_rank);

  std::printf("quickstart: %s on %d nodes + %d spare (%.1f MB/rank images)\n",
              spec.name().c_str(), cfg.compute_nodes, cfg.spare_nodes,
              static_cast<double>(spec.image_bytes_per_rank) / 1e6);

  // 3. Launch, let it run, then migrate node2's ranks away mid-run.
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s) -> sim::Task {
    co_await c.start(workload::make_app(s));
    std::printf("[%7.2fs] job launched, %d ranks running\n",
                sim::Engine::current()->now().to_seconds(), c.job().size());

    co_await sim::sleep_for(15_s);
    std::printf("[%7.2fs] triggering migration away from node2\n",
                sim::Engine::current()->now().to_seconds());
    auto report = co_await c.migration_manager().migrate("node2");

    std::printf("[%7.2fs] migration complete: %s -> %s, ranks {",
                sim::Engine::current()->now().to_seconds(), report.source_host.c_str(),
                report.target_host.c_str());
    for (int r : report.migrated_ranks) std::printf(" %d", r);
    std::printf(" }, %.1f MB moved\n", static_cast<double>(report.bytes_moved) / 1e6);
    std::printf("           phases: stall %.0f ms | migration %.0f ms | "
                "restart %.0f ms | resume %.0f ms\n",
                report.stall.to_ms(), report.migration.to_ms(), report.restart.to_ms(),
                report.resume.to_ms());
  }(cl, spec));

  // 4. Wait for the application to finish; every halo exchange is content-
  //    verified, so completion proves the migrated ranks lost nothing.
  engine.spawn([](cluster::Cluster& c) -> sim::Task {
    co_await c.job().wait_app_done();
    std::printf("[%7.2fs] application finished on all %d ranks\n",
                sim::Engine::current()->now().to_seconds(), c.job().size());
  }(cl));

  engine.run_until(sim::TimePoint::origin() + 1200_s);
  if (!cl.job().app_done()) {
    std::printf("error: application did not finish\n");
    return 1;
  }
  std::printf("quickstart done (processed %lu engine events)\n",
              static_cast<unsigned long>(engine.events_processed()));
  return 0;
}
