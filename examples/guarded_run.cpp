/// Belt and braces: periodic coordinated checkpoints guard against
/// unpredicted failures while the migration framework absorbs the predicted
/// ones — the combined regime the paper's §VI sketches. One node degrades
/// mid-run; the prediction fires; the migration handles it; the checkpoint
/// that was about to start is skipped ("prolonging the interval between
/// full job-wide checkpoints").

#include <cstdio>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/migration/scheduler.hpp"
#include "jobmig/workload/npb.hpp"

using namespace jobmig;
using namespace jobmig::sim::literals;

int main() {
  sim::Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = 1;
  cluster::Cluster cl(engine, cfg);

  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kA, 16);
  cl.create_job(4, spec.image_bytes_per_rank);
  cl.enable_health_monitoring(5_s);

  auto cr = cl.make_cr_local();
  migration::CheckpointScheduler scheduler(cl.job(), *cr,
                                           {/*interval=*/30_s, /*prolong_on_migration=*/true});

  std::printf("guarded_run: %s with 30 s checkpoints + predictive migration\n",
              spec.name().c_str());

  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::CheckpointScheduler& sched) -> sim::Task {
    co_await c.start(workload::make_app(s));
    sched.start();
    std::printf("[%7.2fs] job launched; checkpoint cadence armed\n",
                sim::Engine::current()->now().to_seconds());
    // node3 starts failing at +20 s; the predictor fires shortly after.
    c.sensor(3).inject_degradation(sim::Engine::current()->now() + 20_s, 1.2);
  }(cl, spec, scheduler));

  // Watch for the migration and report it against the checkpoint schedule.
  engine.spawn([](cluster::Cluster& c, migration::CheckpointScheduler& sched) -> sim::Task {
    while (c.migration_manager().cycles_completed() == 0) co_await sim::sleep_for(1_s);
    sched.notify_migration();
    const auto& r = c.migration_manager().last_report();
    std::printf("[%7.2fs] predicted failure on %s handled: ranks moved to %s in %.1f s\n",
                sim::Engine::current()->now().to_seconds(), r.source_host.c_str(),
                r.target_host.c_str(), r.total().to_seconds());
  }(cl, scheduler));

  engine.spawn([](cluster::Cluster& c, migration::CheckpointScheduler& sched) -> sim::Task {
    co_await c.job().wait_app_done();
    sched.stop();
    c.stop_health_monitoring();
    std::printf("[%7.2fs] application finished\n",
                sim::Engine::current()->now().to_seconds());
  }(cl, scheduler));

  engine.run_until(sim::TimePoint::origin() + 2400_s);

  if (!cl.job().app_done() || cl.migration_manager().cycles_completed() != 1) {
    std::printf("error: expected a finished app and one migration\n");
    return 1;
  }
  std::printf("\ncheckpoints taken: %zu (plus %zu avoided thanks to the migration)\n",
              scheduler.checkpoints_taken(), scheduler.checkpoints_avoided());
  std::printf("checkpoint I/O: %.1f MB; time inside checkpoints: %.1f s\n",
              static_cast<double>(scheduler.bytes_written()) / 1e6,
              scheduler.time_in_checkpoints().to_seconds());
  std::printf("no work was lost: the failing node was evacuated, not restarted from disk.\n");
  return 0;
}
